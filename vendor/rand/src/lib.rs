//! Minimal, deterministic, offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses: `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` helpers
//! `gen`, `gen_range`, and `gen_bool`. The generator is SplitMix64, so
//! streams are deterministic per seed — which is what the benchmark
//! workload builders rely on.

use core::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-based replacement for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
        }
    }
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via `rng.gen_range(..)`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let i = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let u = r.gen_range(0usize..9);
            assert!(u < 9);
        }
    }
}
