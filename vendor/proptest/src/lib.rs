//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the `proptest!` macro, the `Strategy` trait (numeric
//! ranges, tuples, `prop_map`, `prop_recursive`, `boxed`), `Just`,
//! `prop_oneof!`, `any::<T>()`, `prop::collection::vec`,
//! `prop::sample::select`, regex-subset string strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking, and rejected cases
//! (`prop_assume!`) are retried with the next deterministic seed. Each
//! case derives its RNG from a fixed seed plus the case index, so
//! failures reproduce run-to-run.

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 stream used to drive value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0xA076_1D64_78BD_642F }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; returns 0 for an empty bound.
        pub fn gen_usize(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn gen_bool(&mut self, p: f64) -> bool {
            self.unit_f64() < p
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives `config.cases` accepted cases through `case`, panicking on
    /// the first failure. Rejections consume a retry budget instead of a
    /// case.
    pub fn run_proptest_cases(
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut seed_index = 0u64;
        while accepted < config.cases {
            let seed = 0xC0FF_EE00_0000_0000u64 ^ seed_index.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let mut rng = TestRng::from_seed(seed);
            let outcome = case(&mut rng);
            seed_index += 1;
            match outcome {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.cases.saturating_mul(16) + 256 {
                        panic!("proptest: too many rejected cases ({rejected})");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: property failed at case {accepted} (seed index {}): {msg}",
                        seed_index - 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { strategy: self, func }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(move |rng| self.generate(rng))
        }

        /// Builds a recursive strategy by unrolling `recurse` to a fixed
        /// depth; `_desired_size` and `_expected_branch` are accepted for
        /// API compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.clone().boxed();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                let base = self.clone().boxed();
                strat = BoxedStrategy::new(move |rng| {
                    if rng.gen_bool(0.5) {
                        deeper.generate(rng)
                    } else {
                        base.generate(rng)
                    }
                });
            }
            strat
        }
    }

    /// Type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T> {
        generator: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { generator: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { generator: Rc::clone(&self.generator) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generator)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        strategy: S,
        func: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.func)(self.strategy.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            OneOf { options }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf { options: self.options.clone() }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.gen_usize(self.options.len());
            self.options[ix].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// String literals act as regex-subset strategies producing `String`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable through `any::<T>()`.
    pub trait Arbitrary: Sized + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<A> {
        _marker: PhantomData<A>,
    }

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any { _marker: PhantomData }
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any { _marker: PhantomData }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty => $cast:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias towards boundary values so overflow paths and
                    // edge cases are exercised even without shrinking.
                    if rng.gen_usize(8) == 0 {
                        const EDGES: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX / 2];
                        EDGES[rng.gen_usize(EDGES.len())]
                    } else {
                        rng.next_u64() as $cast as $t
                    }
                }
            }
        )*};
    }

    int_arbitrary!(
        i64 => i64,
        i32 => u32,
        i16 => u16,
        i8 => u8,
        u64 => u64,
        u32 => u32,
        u16 => u16,
        u8 => u8,
        usize => usize,
    );

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix of unit-interval and wide-magnitude values.
            let unit = rng.unit_f64();
            match rng.gen_usize(4) {
                0 => unit,
                1 => (unit - 0.5) * 2e6,
                2 => (unit - 0.5) * 2e-6,
                _ => (unit - 0.5) * 2e12,
            }
        }
    }

    macro_rules! tuple_arbitrary {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*};
    }

    tuple_arbitrary!((A)(A, B)(A, B, C)(A, B, C, D));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element count for `vec`: either a `Range<usize>` or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.gen_usize(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    #[derive(Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_usize(self.options.len())].clone()
        }
    }
}

pub mod string {
    //! Generator for the regex subset used as string strategies:
    //! concatenations of literal characters and character classes
    //! (ranges, escapes, negation, `&&`-intersection), each with an
    //! optional `?`, `*`, `+`, `{n}`, or `{m,n}` quantifier.

    use crate::test_runner::TestRng;

    const PRINTABLE: std::ops::RangeInclusive<u8> = 0x20..=0x7E;

    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i);
            let n = min + rng.gen_usize(max - min + 1);
            for _ in 0..n {
                if !set.is_empty() {
                    out.push(set[rng.gen_usize(set.len())]);
                }
            }
        }
        out
    }

    /// Parses a class body starting just after `[`, returning the
    /// character set and the index just past the closing `]`.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let negate = chars.get(i) == Some(&'^');
        if negate {
            i += 1;
        }
        let mut set: Vec<char> = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '&' && chars.get(i + 1) == Some(&'&') {
                // Intersection with the following (possibly negated) class.
                i += 2;
                assert_eq!(chars.get(i), Some(&'['), "&& must be followed by a class");
                let (other, next) = parse_class(chars, i + 1);
                i = next;
                set.retain(|c| other.contains(c));
                continue;
            }
            let lo = if chars[i] == '\\' {
                i += 2;
                chars[i - 1]
            } else {
                i += 1;
                chars[i - 1]
            };
            if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
                i += 1; // consume '-'
                let hi = if chars[i] == '\\' {
                    i += 2;
                    chars[i - 1]
                } else {
                    i += 1;
                    chars[i - 1]
                };
                for c in lo..=hi {
                    set.push(c);
                }
            } else {
                set.push(lo);
            }
        }
        i += 1; // consume ']'
        if negate {
            let excluded = set;
            let set: Vec<char> =
                PRINTABLE.map(char::from).filter(|c| !excluded.contains(c)).collect();
            (set, i)
        } else {
            (set, i)
        }
    }

    /// Parses an optional quantifier at `*i`, returning (min, max) counts.
    fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
        match chars.get(*i) {
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[*i..].iter().position(|&c| c == '}').expect("unclosed {") + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run_proptest_cases(&__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __outcome
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!("assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`", __l, __r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                            __l,
                            __r,
                            ::std::format!($($fmt)+),
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!("assertion failed: `left != right`\n  both: `{:?}`", __l),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z][a-zA-Z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));

            let t = crate::string::generate_from_pattern("-?[1-9][0-9]{0,3}", &mut rng);
            let t2 = t.strip_prefix('-').unwrap_or(&t);
            assert!(t2.parse::<i64>().is_ok(), "{t}");
            assert!(!t2.starts_with('0'));

            let u = crate::string::generate_from_pattern("[ -~&&[^\"\\\\]]{0,12}", &mut rng);
            assert!(u.len() <= 12);
            assert!(u.chars().all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'), "{u}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(a in -5i64..9, b in 0usize..4) {
            prop_assert!((-5..9).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn assume_skips(a in 0i64..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }

        #[test]
        fn oneof_and_vec_compose(
            xs in crate::collection::vec(prop_oneof![0i64..3, 10i64..13], 0..8)
        ) {
            for x in xs {
                prop_assert!((0..3).contains(&x) || (10..13).contains(&x));
            }
        }
    }
}
