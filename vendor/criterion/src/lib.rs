//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset used by this workspace: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, group-level
//! `sample_size`, `bench_function(|b| b.iter(..))`, and `finish`.
//!
//! Measurement model: `Bencher::iter` first calibrates a batch size so
//! one batch takes ≳20 ms, then times `sample_size` batches and reports
//! the median ns/iteration (median of batch means). That is cruder than
//! real criterion's bootstrap statistics but stable enough to compare
//! configurations of the same workload.

use std::time::{Duration, Instant};

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup: {name}");
        BenchmarkGroup { name: name.to_string(), sample_size: 12 }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of measured batches per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b);
        println!("  {}/{id}: {}", self.name, format_ns(b.median_ns));
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes ≳20 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(20) || batch >= 1 << 28 {
                break;
            }
            // Aim directly for the 20 ms target once we have signal.
            let grow = if elapsed < Duration::from_micros(100) {
                16
            } else {
                ((Duration::from_millis(25).as_nanos() / elapsed.as_nanos().max(1)) as u64).clamp(2, 64)
            };
            batch = batch.saturating_mul(grow);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a benchmark group runner function named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
