(* wolfram-difftest counterexample
   seed: 191967353235914393
   note: interpreter returned exact 0 for 0*real where Wolfram precision contagion (and the compiled engines) give 0.
   args: {2147483648, {0.75, -1.5, 1.}, 8}
   args: {2, {2.5, -0.25, 3.}, -9}
*)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "Tensor"["Real64", 1]], Typed[p3, "MachineInteger"]}, Module[{v1 = 4, v2 = False, w3 = ConstantArray[0, {2}]}, w3[[2]] = p1^-2*w3[[1]]; w3[[Mod[v1, 2] + 1]] = Subtract[Min[p3, p3], Min[-7, p1]]; v1 = v1; Min[-15*Length[w3], p3^5]; w3]]
