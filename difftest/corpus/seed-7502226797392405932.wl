(* wolfram-difftest counterexample
   seed: 7502226797392405932
   note: value-sorted interpreter Plus vs fixed compiled association round on different grids before large terms cancel; covered by the scaled cancellation allowance
   args: {451583650, 2.75}
   args: {9223372036854775806, -9.}
   args: {-1000000000000000000, 1.}
*)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "Real64"]}, Abs[4611686018427387904] + (-11 + p1) + Subtract[19^-3, Abs[4611686018427387904]]]
