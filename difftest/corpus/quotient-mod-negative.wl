(* wolfram-difftest counterexample
   seed: 0
   note: Quotient/Mod with negative operands must floor toward -Infinity on every engine
   args: {-7, 3}
   args: {7, -3}
   args: {-7, -3}
*)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "MachineInteger"]}, Quotient[p1, p2]*1000 + Mod[p1, p2]]
