(* wolfram-difftest counterexample
   seed: 11190195626429080859
   note: typed engines route Quotient through Real64 and floor back, landing within f64 resolution of the interpreter's exact integer
   args: {{1.75, 2.25, 0.25}, 10, {-2.25, -1.5}}
   args: {{-2., 1.5, 0.5}, 10, {1.25, 0.25}}
   args: {{-1.75, -0.5, -1.75}, 4, {1.75, 0.5}}
*)
Function[{Typed[p1, "Tensor"["Real64", 1]], Typed[p2, "MachineInteger"], Typed[p3, "Tensor"["Real64", 1]]}, Quotient[Abs[9223372036854775807], Max[-1*299565^-2, 18]]]
