(* wolfram-difftest counterexample
   seed: 5206086281058409331
   note: bytecode type inference promotes an integer tensor to Real64 storage after a real element store; storage classes now compare numerically
   args: {-8}
   args: {-5}
*)
Function[{Typed[p1, "MachineInteger"]}, Module[{v1 = False, v2 = -4, w3 = ConstantArray[0, {2}], k4 = 0}, w3[[1]] = v2^-2 + w3[[1]]; While[k4 < 5, w3[[1]] = 775898; k4 = k4 + 1]; w3]]
