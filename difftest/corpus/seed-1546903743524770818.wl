(* wolfram-difftest counterexample
   seed: 1546903743524770818
   note: interpreter promoted an overflowing Max to an exact big integer where typed compiled code stays Real64; compared numerically since
   args: {-9223372036854775806, -1}
   args: {5, -9}
*)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "MachineInteger"]}, Module[{v1 = 8, v2 = -8}, v2 = 11^-3; v1 = Quotient[-3*393798, -1*17^1]; Abs[p1^1] + Max[If[True, 8, 9], Max[p1, v2]]]]
