(* wolfram-difftest counterexample
   seed: 12037205906792935234
   note: interpreter dropped the IEEE sign of an inexact zero product, so a reciprocal power picked the wrong branch of infinity
   args: {-10, 6.75, 9.75}
   args: {156508829, -6.75, 6.5}
*)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "Real64"], Typed[p3, "Real64"]}, Module[{v1 = 0, v2 = 0.75, v3 = -3., k4 = 0, k5 = 0}, While[k4 < 4, v2 = If[True, p2, 5.75]; k4 = k4 + 1]; v3 = Subtract[p3, -3.] + Subtract[-7.5, 2.25]; While[k5 < 1, If[False, v3 = p2, v3 = -5.]; k5 = k5 + 1]; v3 = Mod[Divide[4.75, v3], 4.25*6.75]; (-1*3^-3*Quotient[k4, p1])^-3]]
