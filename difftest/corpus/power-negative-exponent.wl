(* wolfram-difftest counterexample
   seed: 0
   note: integer base with negative exponent is a real reciprocal power, not integer division
   args: {-4}
   args: {3}
*)
Function[{Typed[p1, "MachineInteger"]}, p1^-2]
