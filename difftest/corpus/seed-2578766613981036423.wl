(* wolfram-difftest counterexample
   seed: 2578766613981036423
   note: native folded `v <= v` as strict Less (compare_less prefix shadowed compare_less_equal in primitive_base), taking the else branch
   args: {2147483648, 0.5, {3, 0, -4}}
   args: {0, 0.5, {-3, 2, -3}}
   args: {-453092142, -7., {-3, 1, 7}}
*)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "Real64"], Typed[p3, "Tensor"["Integer64", 1]]}, Module[{v1 = 1, w2 = ConstantArray[0, {3}]}, If[If[True, v1, v1] <= v1, v1 = v1, v1 = Mod[20, 6]]; v1*v1]]
