(* wolfram-difftest counterexample
   seed: 14433949118590764796
   note: interpreter short-circuited 0*Infinity to 0 where IEEE (and the compiled engines) give NaN
   args: {0}
   args: {642094182}
*)
Function[{Typed[p1, "MachineInteger"]}, (Min[12, p1] + p1^-1)*Subtract[p1 + p1, Quotient[p1, -1]]]
