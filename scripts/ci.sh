#!/usr/bin/env bash
# CI gate: tier-1 verification (ROADMAP.md) plus lint.
#
#   tier-1:  cargo build --release && cargo test -q
#   lint:    cargo fmt --all -- --check
#            cargo clippy --all-targets -- -D warnings
#
# Run from the repository root: ./scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> lint: cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> analyzer: reproduce analyze on the committed corpus"
for wl in difftest/corpus/*.wl; do
  ./target/release/reproduce analyze "$wl" > /dev/null
done

echo "==> analyzer: reproduce analyze smoke (all IR stages)"
SRC='Function[{Typed[n, "MachineInteger"]}, Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]'
for stage in wir twir post-pipeline; do
  ./target/release/reproduce analyze --ir-stage "$stage" "$SRC" > /dev/null
done

echo "==> serve: bench-serve smoke (zero divergences, nonzero hit rate)"
./target/release/reproduce bench-serve --quick

echo "==> parallel: bench-parallel smoke (result equivalence, balanced counters)"
# Quick-scale ablation over the tensor benchmarks; exits nonzero if any
# data-parallel configuration (including threads=2) diverges from the
# fused-scalar baseline or global_stats() ends up imbalanced.
./target/release/reproduce bench-parallel --quick

echo "==> lint: cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> lint (workspace): cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all checks passed"
