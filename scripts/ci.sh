#!/usr/bin/env bash
# CI gate: tier-1 verification (ROADMAP.md) plus lint.
#
#   tier-1:  cargo build --release && cargo test -q
#   lint:    cargo fmt --all -- --check
#            cargo clippy --all-targets -- -D warnings
#
# Run from the repository root: ./scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> lint: cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> analyzer: reproduce analyze on the committed corpus"
for wl in difftest/corpus/*.wl; do
  ./target/release/reproduce analyze "$wl" > /dev/null
done

echo "==> analyzer: reproduce analyze smoke (all IR stages)"
SRC='Function[{Typed[n, "MachineInteger"]}, Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]'
for stage in wir twir post-pipeline; do
  ./target/release/reproduce analyze --ir-stage "$stage" "$SRC" > /dev/null
done

echo "==> analyzer: range-check elision stats vs committed golden"
./target/release/reproduce analyze --stats --golden ANALYZE_stats.golden > /dev/null

echo "==> serve: bench-serve smoke (zero divergences, nonzero hit rate)"
./target/release/reproduce bench-serve --quick

echo "==> serve: networked warm-restart smoke (wire protocol + disk cache)"
# Start a socket server over an empty disk-cache dir, drive it with the
# closed-loop wire client, SIGTERM it, restart it over the *same* dir,
# and require the second run to serve every first-sight program from the
# disk cache with zero recompiles (the warm-restart contract). Both runs
# fail on any divergence from ground truth.
SERVE_ADDR="127.0.0.1:7788"
SERVE_CACHE_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup_serve() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$SERVE_CACHE_DIR"
}
trap cleanup_serve EXIT
wait_for_serve() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/7788") 2>/dev/null; then
      exec 3>&- 2>/dev/null || true
      return 0
    fi
    sleep 0.1
  done
  echo "serve did not start listening on $SERVE_ADDR" >&2
  return 1
}
./target/release/reproduce serve --listen "$SERVE_ADDR" --tier bytecode \
  --cache-dir "$SERVE_CACHE_DIR" &
SERVE_PID=$!
wait_for_serve
./target/release/reproduce bench-serve --net "$SERVE_ADDR" --quick \
  --json BENCH_serve_net_cold.json
kill -TERM "$SERVE_PID" && wait "$SERVE_PID" || true
./target/release/reproduce serve --listen "$SERVE_ADDR" --tier bytecode \
  --cache-dir "$SERVE_CACHE_DIR" &
SERVE_PID=$!
wait_for_serve
./target/release/reproduce bench-serve --net "$SERVE_ADDR" --quick --expect-warm \
  --json BENCH_serve_net_warm.json
kill -TERM "$SERVE_PID" && wait "$SERVE_PID" || true
SERVE_PID=""
rm -rf "$SERVE_CACHE_DIR"

echo "==> parallel: bench-parallel smoke (result equivalence, balanced counters)"
# Quick-scale ablation over the tensor benchmarks; exits nonzero if any
# data-parallel configuration (including threads=2) diverges from the
# fused-scalar baseline or global_stats() ends up imbalanced. The JSON
# report is uploaded as a workflow artifact by ci.yml.
./target/release/reproduce bench-parallel --quick --json BENCH_parallel.json

echo "==> stream: bench-stream smoke (equivalence, balanced counters, throughput floor)"
# Quick-scale streaming sweep; exits nonzero if any configuration's output
# differs from a one-shot loop of the same tier, the memory counters end
# up imbalanced, no frame resets were recorded (the reuse path didn't
# run), or the best streamed speedup misses the sanity floor. The JSON
# report is uploaded as a workflow artifact by ci.yml.
./target/release/reproduce bench-stream --quick --json BENCH_stream.json

echo "==> stream: CLI smoke (line-delimited records, in-order replies)"
STREAM_OUT="$(printf '1\n2\nnope\n4\n' | ./target/release/reproduce stream \
  --function 'Function[{Typed[n, "MachineInteger"]}, n*n]' --batch 2 2>/dev/null)"
if [ "$STREAM_OUT" != "$(printf 'ok 1\nok 4\nerr type error: argument nope does not match parameter type Integer64\nok 16')" ]; then
  echo "unexpected stream output:" >&2
  echo "$STREAM_OUT" >&2
  exit 1
fi

echo "==> lint: cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> lint (workspace): cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all checks passed"
