//! Integration: the staged pipeline end to end, including the appendix
//! A.6 intermediate-representation dumps.

use wolfram_language_compiler::compiler::{Compiler, CompilerOptions};
use wolfram_language_compiler::expr::parse;
use wolfram_language_compiler::runtime::Value;

fn add_one() -> wolfram_language_compiler::expr::Expr {
    parse("Function[{Typed[arg, \"MachineInteger\"]}, arg + 1]").unwrap()
}

#[test]
fn appendix_ast_dump() {
    let compiler = Compiler::default();
    let ast = compiler.compile_to_ast(&add_one());
    // A.6.1: no macros apply to addOne, so the code is unchanged.
    assert_eq!(
        ast.to_full_form(),
        "Function[List[Typed[arg, \"MachineInteger\"]], Plus[arg, 1]]"
    );
}

#[test]
fn appendix_wir_dump() {
    let compiler = Compiler::default();
    let wir = compiler.compile_to_ir(&add_one()).unwrap();
    let text = wir.main().to_text();
    // A.6.2 shape: LoadArgument, unresolved Plus, Return; untyped calls.
    assert!(text.contains("LoadArgument"), "{text}");
    assert!(text.contains("Call Plus [%0, 1:I64]"), "{text}");
    assert!(text.contains("Return"), "{text}");
    assert!(text.contains("\"AbortHandling\"->True"), "{text}");
}

#[test]
fn appendix_twir_dump() {
    let compiler = Compiler::default();
    let twir = compiler.compile_to_twir(&add_one(), None).unwrap();
    let text = twir.main().to_text();
    // A.6.3 shape: a fully typed signature and the mangled runtime
    // primitive (the paper's checked_binary_plus_Integer64_Integer64).
    assert!(text.contains("Main : (I64)->I64"), "{text}");
    assert!(
        text.contains("checked_binary_plus$Integer64$Integer64"),
        "{text}"
    );
    assert!(text.contains("\"isTrivial\"->True"), "{text}");
    assert!(twir.main().is_fully_typed());
}

#[test]
fn appendix_c_and_assembler_dumps() {
    let compiler = Compiler::default();
    let c = compiler.export_string(&add_one(), "C").unwrap();
    assert!(c.contains("int64_t WL_Main(int64_t a0)"), "{c}");
    assert!(c.contains("wolfram_rt_checked_add"), "{c}");
    let asm = compiler.export_string(&add_one(), "Assembler").unwrap();
    assert!(asm.contains("_Main:"), "{asm}");
    assert!(asm.contains("ret I"), "{asm}");
    let wvm = compiler.export_string(&add_one(), "WVM").unwrap();
    assert!(wvm.contains("Bin { op: Add"), "{wvm}");
}

#[test]
fn per_stage_timings_recorded() {
    let compiler = Compiler::default();
    let _ = compiler.compile_to_twir(&add_one(), None).unwrap();
    let stages: Vec<String> = compiler.timings().into_iter().map(|(n, _)| n).collect();
    for expected in [
        "macro-expansion",
        "binding-analysis",
        "lowering",
        "type-inference",
        "function-resolution",
    ] {
        assert!(
            stages.iter().any(|s| s == expected),
            "missing {expected}: {stages:?}"
        );
    }
}

#[test]
fn optimization_levels_agree_on_results() {
    let src = "Function[{Typed[n, \"MachineInteger\"]}, \
               Module[{s = 0, i = 1}, While[i <= n, s = s + i*i; i = i + 1]; s]]";
    let baseline = Compiler::default().function_compile_src(src).unwrap();
    let opts = CompilerOptions {
        optimization_level: 0,
        ..CompilerOptions::default()
    };
    let unopt = Compiler::new(opts).function_compile_src(src).unwrap();
    for n in [0i64, 1, 10, 100] {
        assert_eq!(
            baseline.call(&[Value::I64(n)]).unwrap(),
            unopt.call(&[Value::I64(n)]).unwrap(),
            "n = {n}"
        );
    }
}

#[test]
fn every_disabled_pass_combination_is_still_correct() {
    let src = "Function[{Typed[x, \"Real64\"]}, \
               Module[{a = x*x, b = x*x}, a + b + Sin[0.0] + 1.0]]";
    let expected = Compiler::default()
        .function_compile_src(src)
        .unwrap()
        .call(&[Value::F64(3.0)])
        .unwrap();
    for pass in [
        "constant-fold",
        "cse",
        "copy-propagation",
        "dce",
        "simplify-cfg",
    ] {
        let mut opts = CompilerOptions::default();
        opts.disabled_passes.insert(pass.to_string());
        let cf = Compiler::new(opts).function_compile_src(src).unwrap();
        assert_eq!(
            cf.call(&[Value::F64(3.0)]).unwrap(),
            expected,
            "without {pass}"
        );
    }
}

#[test]
fn export_library_roundtrip() {
    let compiler = Compiler::default();
    let f = parse("Function[{Typed[x, \"Real64\"]}, Exp[x] - 1.0]").unwrap();
    let dir = std::env::temp_dir().join("wolfram-integration-export");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("expm1.wxl");
    let lib = compiler.export_library(&f, &path).unwrap();
    assert!(lib.standalone);
    let loaded = compiler.load_library(&path).unwrap();
    assert_eq!(loaded.call(&[Value::F64(0.0)]).unwrap(), Value::F64(0.0));
    std::fs::remove_file(&path).ok();
}

#[test]
fn compile_errors_name_their_stage() {
    let compiler = Compiler::default();
    // Missing parameter types: inference cannot proceed.
    let err = compiler
        .function_compile_src("Function[{n}, n + 1]")
        .unwrap_err();
    assert!(err.to_string().contains("infer"), "{err}");
    // Ill-typed body (no symbolic escape: StringLength has no
    // Expression overload).
    let err = compiler
        .function_compile_src("Function[{Typed[x, \"Real64\"]}, StringLength[x]]")
        .unwrap_err();
    assert!(
        err.to_string().contains("StringLength") || err.to_string().contains("Real64"),
        "{err}"
    );
}
