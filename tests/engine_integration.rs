//! Integration: compiled code hosted in the Wolfram Engine — the F1/F2/F3/
//! F9 behaviors across crate boundaries.

use std::cell::RefCell;
use std::rc::Rc;
use wolfram_language_compiler::compiler::Compiler;
use wolfram_language_compiler::expr::{parse, Expr};
use wolfram_language_compiler::interp::Interpreter;
use wolfram_language_compiler::runtime::{RuntimeError, Value};

fn engine() -> Rc<RefCell<Interpreter>> {
    Rc::new(RefCell::new(Interpreter::new()))
}

#[test]
fn paper_cfib_200_soft_failure() {
    // §4.5: "When the compiled code detects an integer overflow (e.g.
    // cfib[200]), it print a warning message and switch to the interpreter
    // which evaluates the function with arbitrary precision integer" —
    // with the paper's printed 42-digit result.
    let eng = engine();
    let src = "Function[{Typed[n, \"MachineInteger\"]}, \
               Module[{a = 0, b = 1, k = 0, t = 0}, \
               While[k < n, t = a + b; a = b; b = t; k = k + 1]; a]]";
    let cfib = Compiler::default()
        .function_compile_src(src)
        .unwrap()
        .hosted(eng.clone());
    let out = cfib.call_exprs(&[Expr::int(200)]).unwrap();
    assert_eq!(
        out.to_full_form(),
        "280571172992510140037611932413038677189525"
    );
    let warnings = eng.borrow_mut().take_output();
    assert!(
        warnings[0].contains("reverting to uncompiled evaluation: IntegerOverflow"),
        "{warnings:?}"
    );
}

#[test]
fn session_survives_abort_with_mutated_state() {
    // §3 F3: "The returned session state must be usable but it may be
    // mutated by the aborted computation."
    let eng = engine();
    eng.borrow_mut().eval_src("i = 0").unwrap();
    eng.borrow().abort_signal().trigger();
    let err = eng
        .borrow_mut()
        .eval_src("While[True, If[i > 3, i = i - 1, i = i + 1]]")
        .unwrap_err();
    assert_eq!(err, RuntimeError::Aborted);
    eng.borrow().abort_signal().reset();
    // The session still works; i retains whatever the abort left behind.
    let i = eng.borrow_mut().eval_src("i").unwrap();
    assert!(i.as_i64().is_some(), "session state usable: {i:?}");
    assert_eq!(
        eng.borrow_mut().eval_src("1 + 1").unwrap().as_i64(),
        Some(2)
    );
}

#[test]
fn compiled_and_interpreted_code_intermix() {
    // F9 both directions: compiled code escapes to the interpreter for
    // user-defined functions, and interpreted code calls installed
    // compiled functions.
    let eng = engine();
    eng.borrow_mut().eval_src("scale[x_] := 10 * x").unwrap();
    let cf = Compiler::default()
        .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, scale[n] + 1]")
        .unwrap()
        .hosted(eng.clone());
    assert_eq!(cf.call_exprs(&[Expr::int(4)]).unwrap().as_i64(), Some(41));
    cf.install("compiledScale").unwrap();
    let out = eng
        .borrow_mut()
        .eval_src("Total[Map[compiledScale, {1, 2, 3}]]")
        .unwrap();
    assert_eq!(out.as_i64(), Some(63)); // (10+1)+(20+1)+(30+1)
}

#[test]
fn compiled_function_used_by_interpreted_higher_order_code() {
    let eng = engine();
    let cf = Compiler::default()
        .function_compile_src("Function[{Typed[x, \"Real64\"]}, x*x]")
        .unwrap()
        .hosted(eng.clone());
    cf.install("sq").unwrap();
    // NestList through a compiled function.
    let out = eng.borrow_mut().eval_src("NestList[sq, 2.0, 3]").unwrap();
    assert_eq!(out.to_full_form(), "List[2., 4., 16., 256.]");
    // FixedPoint/Fold style use.
    let out = eng
        .borrow_mut()
        .eval_src("Fold[Plus, 0., Map[sq, {1., 2., 3.}]]")
        .unwrap();
    assert_eq!(out.as_f64(), Some(14.0));
}

#[test]
fn argument_mismatch_reverts_to_interpreter_when_hosted() {
    let eng = engine();
    let cf = Compiler::default()
        .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, n + n]")
        .unwrap()
        .hosted(eng);
    // A symbolic argument cannot be unboxed as a machine integer: the
    // auxiliary wrapper falls back to uncompiled evaluation, which keeps
    // the result symbolic.
    let out = cf.call_exprs(&[Expr::sym("q")]).unwrap();
    assert_eq!(out.to_full_form(), "Times[2, q]");
}

#[test]
fn installed_function_soft_failure_inside_interpreted_code() {
    // The overflow fallback also fires when the compiled function is
    // called *from* interpreted code.
    let eng = engine();
    let cf = Compiler::default()
        .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, n * n]")
        .unwrap()
        .hosted(eng.clone());
    cf.install("square").unwrap();
    let out = eng.borrow_mut().eval_src("square[4000000000]").unwrap();
    assert_eq!(out.to_full_form(), "16000000000000000000");
    let warnings = eng.borrow_mut().take_output();
    assert!(
        warnings.iter().any(|w| w.contains("IntegerOverflow")),
        "{warnings:?}"
    );
}

#[test]
fn shared_abort_signal_spans_interpreter_and_compiled_code() {
    let eng = engine();
    let cf = Compiler::default()
        .function_compile_src(
            "Function[{Typed[n, \"MachineInteger\"]}, Module[{i = 0}, While[i >= 0, i = i + 1]; i]]",
        )
        .unwrap()
        .hosted(eng.clone());
    cf.install("spin").unwrap();
    // Trigger from "another thread" (the notebook front end).
    let signal = eng.borrow().abort_signal().clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        signal.trigger();
    });
    let err = eng.borrow_mut().eval_src("spin[0]").unwrap_err();
    handle.join().unwrap();
    assert_eq!(err, RuntimeError::Aborted);
    eng.borrow().abort_signal().reset();
}

#[test]
fn symbolic_values_flow_between_worlds() {
    // A compiled Expression-typed function combined with interpreter
    // rewriting (F8 + F1).
    let eng = engine();
    let cf = Compiler::default()
        .function_compile_src(
            "Function[{Typed[a, \"Expression\"], Typed[b, \"Expression\"]}, a + b]",
        )
        .unwrap()
        .hosted(eng.clone());
    cf.install("symPlus").unwrap();
    let out = eng
        .borrow_mut()
        .eval_src("symPlus[x, y] /. {x -> 1, y -> 2}")
        .unwrap();
    assert_eq!(out.as_i64(), Some(3));
    let out = eng
        .borrow_mut()
        .eval_src("D[symPlus[Sin[t], t^2], t]")
        .unwrap();
    assert_eq!(out.to_full_form(), "Plus[Cos[t], Times[2, t]]");
}

#[test]
fn mutability_semantics_across_the_boundary() {
    // The paper's F5 example, driven from interpreted code through an
    // installed compiled function.
    let eng = engine();
    let cf = Compiler::default()
        .function_compile_src(
            "Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]]}, \
             Module[{w = v}, w[[3]] = -20; w]]",
        )
        .unwrap()
        .hosted(eng.clone());
    cf.install("mutate").unwrap();
    let out = eng
        .borrow_mut()
        .eval_src("a = {1, 2, 3}; b = mutate[a]; {a, b}")
        .unwrap();
    assert_eq!(out.to_full_form(), "List[List[1, 2, 3], List[1, 2, -20]]");
}

#[test]
fn values_and_exprs_roundtrip_types() {
    let compiler = Compiler::default();
    let cf = compiler
        .function_compile_src(
            "Function[{Typed[s, \"String\"], Typed[n, \"MachineInteger\"]}, \
             StringJoin[s, FromCharacterCode[ConstantArray[n, 3]]]]",
        )
        .unwrap();
    let out = cf
        .call(&[Value::Str(std::sync::Arc::new("ab".into())), Value::I64(99)])
        .unwrap();
    assert_eq!(out, Value::Str(std::sync::Arc::new("abccc".into())));
    let out = cf.call_exprs(&[Expr::string("x"), Expr::int(33)]).unwrap();
    assert_eq!(out.as_str(), Some("x!!!"));
    let _ = parse; // silence unused in some cfgs
}
