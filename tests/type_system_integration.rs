//! Integration: the §4.4 type system surface through the full compiler —
//! TypeSpecifier aliases, inference from one annotation, numeric
//! promotion/boxing, rank polymorphism, and typed error reporting.

use wolfram_language_compiler::compiler::{Compiler, CompilerOptions, InlinePolicy};
use wolfram_language_compiler::runtime::{Tensor, Value};

fn compile(src: &str) -> wolfram_language_compiler::compiler::CompiledCodeFunction {
    Compiler::default().function_compile_src(src).unwrap()
}

// ---------------------------------------------------------------------
// TypeSpecifier aliases and forms.
// ---------------------------------------------------------------------

#[test]
fn machine_integer_aliases_are_interchangeable() {
    for spec in ["MachineInteger", "Integer64", "Integer"] {
        let cf = compile(&format!("Function[{{Typed[n, \"{spec}\"]}}, n + 1]"));
        assert_eq!(
            cf.call(&[Value::I64(41)]).unwrap(),
            Value::I64(42),
            "{spec}"
        );
    }
}

#[test]
fn real_aliases_are_interchangeable() {
    for spec in ["MachineReal", "Real64", "Real"] {
        let cf = compile(&format!("Function[{{Typed[x, \"{spec}\"]}}, x * 2]"));
        assert_eq!(
            cf.call(&[Value::F64(1.5)]).unwrap(),
            Value::F64(3.0),
            "{spec}"
        );
    }
}

#[test]
fn compound_tensor_specifier() {
    let cf = compile("Function[{Typed[v, \"Tensor\"[\"Real64\", 1]]}, Total[v] / Length[v]]");
    let mean = cf
        .call(&[Value::Tensor(Tensor::from_f64(vec![1.0, 2.0, 3.0, 6.0]))])
        .unwrap();
    assert_eq!(mean, Value::F64(3.0));
}

#[test]
fn rank_two_tensor_specifier() {
    let cf = compile("Function[{Typed[m, \"Tensor\"[\"Integer64\", 2]]}, m[[2, 1]]]");
    let m = Tensor::with_shape(
        vec![2, 2],
        wolfram_language_compiler::runtime::TensorData::I64(vec![1, 2, 3, 4]),
    )
    .unwrap();
    assert_eq!(cf.call(&[Value::Tensor(m)]).unwrap(), Value::I64(3));
}

// ---------------------------------------------------------------------
// Inference: one annotation types the whole body (§4.4 "minimal type
// annotations").
// ---------------------------------------------------------------------

#[test]
fn locals_loops_and_conditionals_are_inferred() {
    let cf = compile(
        "Function[{Typed[n, \"MachineInteger\"]},
          Module[{acc = 0, i = 1},
           While[i <= n,
            If[Mod[i, 2] == 0, acc = acc + i, acc = acc - i];
            i = i + 1];
           acc]]",
    );
    // -1+2-3+4...-9+10 = 5
    assert_eq!(cf.call(&[Value::I64(10)]).unwrap(), Value::I64(5));
}

#[test]
fn integer_literal_promotes_to_real_context() {
    // `x + 1` with Real64 x requires Integer64 -> Real64 promotion.
    let cf = compile("Function[{Typed[x, \"Real64\"]}, x + 1]");
    assert_eq!(cf.call(&[Value::F64(0.5)]).unwrap(), Value::F64(1.5));
}

#[test]
fn mixed_arithmetic_takes_the_lub() {
    // Integer argument, Real literal: the result type is Real64.
    let cf = compile("Function[{Typed[n, \"MachineInteger\"]}, n * 0.5]");
    assert_eq!(cf.call(&[Value::I64(7)]).unwrap(), Value::F64(3.5));
}

#[test]
fn real_tensor_plus_integer_scalar_promotes_elementwise() {
    let cf = compile("Function[{Typed[v, \"Tensor\"[\"Real64\", 1]]}, v + 1]");
    let out = cf
        .call(&[Value::Tensor(Tensor::from_f64(vec![0.5, 1.5]))])
        .unwrap();
    assert_eq!(out.expect_tensor().unwrap().as_f64().unwrap(), &[1.5, 2.5]);
}

#[test]
fn boolean_results_from_comparisons() {
    let cf = compile("Function[{Typed[n, \"MachineInteger\"]}, n > 10 && Mod[n, 2] == 0]");
    assert_eq!(cf.call(&[Value::I64(12)]).unwrap(), Value::Bool(true));
    assert_eq!(cf.call(&[Value::I64(11)]).unwrap(), Value::Bool(false));
    assert_eq!(cf.call(&[Value::I64(2)]).unwrap(), Value::Bool(false));
}

// ---------------------------------------------------------------------
// Scalar -> Expression boxing (the "everything is an expression" escape
// hatch, cost 10 in the promotion graph).
// ---------------------------------------------------------------------

#[test]
fn scalars_box_into_expression_arguments() {
    // Sin of a *symbolic* argument forces the Expression instantiation;
    // adding an integer to it boxes the scalar. Symbolic operations
    // normalize through the hosting engine (§4.5 threaded interpretation).
    let engine = std::rc::Rc::new(std::cell::RefCell::new(
        wolfram_language_compiler::interp::Interpreter::new(),
    ));
    let cf = compile("Function[{Typed[n, \"MachineInteger\"]}, Sin[q] + n]").hosted(engine);
    let out = cf
        .call_exprs(&[wolfram_language_compiler::expr::Expr::int(3)])
        .unwrap();
    assert_eq!(out.to_full_form(), "Plus[3, Sin[q]]");
}

// ---------------------------------------------------------------------
// Errors: untypeable programs fail at compile time with the right stage.
// ---------------------------------------------------------------------

#[test]
fn missing_annotation_is_a_compile_error() {
    // No Typed[] on the parameter: inference has nothing to anchor I/O.
    let err = Compiler::default()
        .function_compile_src("Function[{n}, n + 1]")
        .unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("type") || msg.contains("Typed") || msg.contains("annotation"),
        "unhelpful message: {msg}"
    );
}

#[test]
fn rank_mismatch_is_a_compile_error() {
    // Dot of two rank-1 tensors is a scalar; indexing it is ill-typed.
    let err = Compiler::default()
        .function_compile_src("Function[{Typed[v, \"Tensor\"[\"Real64\", 1]]}, Part[Total[v], 1]]")
        .unwrap_err();
    assert!(!format!("{err}").is_empty());
}

#[test]
fn unknown_type_name_is_a_compile_error() {
    let err = Compiler::default()
        .function_compile_src("Function[{Typed[n, \"Quaternion\"]}, n]")
        .unwrap_err();
    assert!(!format!("{err}").is_empty());
}

// ---------------------------------------------------------------------
// Polymorphic stdlib instantiation: the same source implementation
// instantiates at several monomorphic types.
// ---------------------------------------------------------------------

#[test]
fn same_function_instantiates_at_integer_and_real() {
    for (spec, arg, want) in [
        ("MachineInteger", Value::I64(-5), Value::I64(5)),
        ("Real64", Value::F64(-2.5), Value::F64(2.5)),
    ] {
        let cf = compile(&format!("Function[{{Typed[x, \"{spec}\"]}}, Abs[x]]"));
        assert_eq!(cf.call(&[arg]).unwrap(), want, "{spec}");
    }
}

#[test]
fn higher_order_closure_is_monomorphized() {
    let cf = compile(
        "Function[{Typed[n, \"MachineInteger\"]},
          Fold[Function[{a, b}, a + b*b], 0, Range[n]]]",
    );
    // Sum of squares 1..5 = 55.
    assert_eq!(cf.call(&[Value::I64(5)]).unwrap(), Value::I64(55));
}

// ---------------------------------------------------------------------
// Inline policies produce identical observable behaviour.
// ---------------------------------------------------------------------

#[test]
fn inline_policy_is_semantics_preserving() {
    let src = "Function[{Typed[n, \"MachineInteger\"]},
      Module[{acc = 0, i = 1},
       While[i <= n, acc = acc + i*i; i = i + 1];
       acc]]";
    let mut outs = Vec::new();
    for policy in [
        InlinePolicy::Automatic,
        InlinePolicy::Never,
        InlinePolicy::Always,
    ] {
        let opts = CompilerOptions {
            inline_policy: policy,
            ..CompilerOptions::default()
        };
        let cf = Compiler::new(opts).function_compile_src(src).unwrap();
        outs.push(cf.call(&[Value::I64(100)]).unwrap());
    }
    assert_eq!(outs[0], Value::I64(338_350));
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
}

// ---------------------------------------------------------------------
// Optimization levels and the typed pipeline agree.
// ---------------------------------------------------------------------

#[test]
fn quotient_floor_semantics_compiled() {
    // Regression: Quotient is Floor[m/n] in every engine (not truncation).
    let cf = compile(
        "Function[{Typed[a, \"MachineInteger\"], Typed[b, \"MachineInteger\"]}, Quotient[a, b]]",
    );
    for (a, b, want) in [(-1i64, 2i64, -1i64), (1, -2, -1), (-7, -2, 3), (7, 2, 3)] {
        assert_eq!(
            cf.call(&[Value::I64(a), Value::I64(b)]).unwrap(),
            Value::I64(want),
            "Quotient[{a}, {b}]"
        );
        // And it matches the interpreter.
        let i = wolfram_language_compiler::interp::Interpreter::new()
            .eval_src(&format!("Quotient[{a}, {b}]"))
            .unwrap();
        assert_eq!(i.as_i64(), Some(want));
    }
}

#[test]
fn nest_compiles_with_untyped_lambda() {
    let cf = compile(
        "Function[{Typed[x, \"Real64\"], Typed[n, \"MachineInteger\"]},
          Nest[Function[{t}, (t + 2.0/t) / 2.0], x, n]]",
    );
    // Newton iteration for Sqrt[2].
    let out = cf.call(&[Value::F64(1.0), Value::I64(6)]).unwrap();
    let got = out.expect_f64().unwrap();
    assert!((got - std::f64::consts::SQRT_2).abs() < 1e-12, "{got}");
}

#[test]
fn matrix_vector_dot_uses_the_shared_kernel() {
    let cf = compile(
        "Function[{Typed[m, \"Tensor\"[\"Real64\", 2]], Typed[v, \"Tensor\"[\"Real64\", 1]]},
          Dot[m, v]]",
    );
    let m = Tensor::with_shape(
        vec![2, 3],
        wolfram_language_compiler::runtime::TensorData::F64(vec![1., 2., 3., 4., 5., 6.]),
    )
    .unwrap();
    let v = Tensor::from_f64(vec![1.0, 0.5, -1.0]);
    let out = cf.call(&[Value::Tensor(m), Value::Tensor(v)]).unwrap();
    let out = out.expect_tensor().unwrap();
    assert_eq!(out.as_f64().unwrap(), &[-1.0, 0.5]);
}

#[test]
fn abort_unwinds_instantiated_hof_loop() {
    // The abort check inserted in the stdlib Fold instantiation's loop
    // header must fire even though the user never wrote a loop (F3
    // through function resolution).
    let engine = std::rc::Rc::new(std::cell::RefCell::new(
        wolfram_language_compiler::interp::Interpreter::new(),
    ));
    let cf = compile(
        "Function[{Typed[n, \"MachineInteger\"]},
          Fold[Function[{a, b}, a + b], 0, Range[n]]]",
    )
    .hosted(engine.clone());
    assert_eq!(cf.call(&[Value::I64(10)]).unwrap(), Value::I64(55));
    engine.borrow().abort_signal().trigger();
    let err = cf.call(&[Value::I64(100_000_000)]).unwrap_err();
    assert_eq!(
        err,
        wolfram_language_compiler::runtime::RuntimeError::Aborted
    );
    engine.borrow().abort_signal().reset();
    assert_eq!(cf.call(&[Value::I64(4)]).unwrap(), Value::I64(10));
}

#[test]
fn compiled_nest_matches_interpreter() {
    let cf = compile(
        "Function[{Typed[x, \"MachineInteger\"], Typed[n, \"MachineInteger\"]},
          Nest[Function[{t}, 3*t + 1], x, n]]",
    );
    let mut interp = wolfram_language_compiler::interp::Interpreter::new();
    for (x, n) in [(1i64, 0i64), (1, 5), (7, 3), (-2, 10)] {
        let got = cf.call(&[Value::I64(x), Value::I64(n)]).unwrap();
        let want = interp
            .eval_src(&format!("Nest[Function[{{t}}, 3*t + 1], {x}, {n}]"))
            .unwrap();
        assert_eq!(got.to_expr(), want, "Nest at x={x}, n={n}");
    }
}

#[test]
fn table_desugars_to_map_over_range() {
    // The §4.2 macro Table[body, {i, n}] :> Map[Function[{i}, body],
    // Range[n]] makes Table compilable through the stdlib HOFs.
    let cf = compile("Function[{Typed[n, \"MachineInteger\"]}, Total[Table[i*i, {i, n}]]]");
    assert_eq!(cf.call(&[Value::I64(10)]).unwrap(), Value::I64(385));
    // And the AST dump shows the rewrite.
    let ast = Compiler::default().compile_to_ast(
        &wolfram_language_compiler::expr::parse(
            "Function[{Typed[n, \"MachineInteger\"]}, Table[i + 1, {i, n}]]",
        )
        .unwrap(),
    );
    let text = ast.to_full_form();
    assert!(text.contains("Map["), "{text}");
    assert!(text.contains("Range[n]"), "{text}");
}
