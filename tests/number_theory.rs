//! Integration: number-theoretic functions across all three engines,
//! including the Factorial soft-failure path (21! overflows machine
//! integers; hosted compiled code reverts to the interpreter's bignums).

use std::cell::RefCell;
use std::rc::Rc;
use wolfram_language_compiler::compiler::Compiler;
use wolfram_language_compiler::expr::Expr;
use wolfram_language_compiler::interp::Interpreter;
use wolfram_language_compiler::runtime::{RuntimeError, Value};

#[test]
fn factorial_compiled_matches_interpreter_in_machine_range() {
    let cf = Compiler::default()
        .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, Factorial[n]]")
        .unwrap();
    let mut interp = Interpreter::new();
    for n in 0..=20i64 {
        let compiled = cf.call(&[Value::I64(n)]).unwrap();
        let interpreted = interp.eval_src(&format!("Factorial[{n}]")).unwrap();
        assert_eq!(compiled.to_expr(), interpreted, "n = {n}");
    }
}

#[test]
fn factorial_soft_failure_at_21() {
    // 21! = 51090942171709440000 > i64::MAX.
    let engine = Rc::new(RefCell::new(Interpreter::new()));
    let cf = Compiler::default()
        .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, Factorial[n]]")
        .unwrap()
        .hosted(engine.clone());
    // Standalone-style call: hard overflow.
    let standalone = Compiler::default()
        .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, Factorial[n]]")
        .unwrap();
    assert_eq!(
        standalone.call(&[Value::I64(21)]),
        Err(RuntimeError::IntegerOverflow)
    );
    // Hosted call: soft fallback to bignum.
    let out = cf.call_exprs(&[Expr::int(21)]).unwrap();
    assert_eq!(out.to_full_form(), "51090942171709440000");
    assert!(engine
        .borrow_mut()
        .take_output()
        .iter()
        .any(|w| w.contains("IntegerOverflow")));
    // 20! stays native.
    assert_eq!(
        cf.call(&[Value::I64(20)]).unwrap(),
        Value::I64(2432902008176640000)
    );
}

#[test]
fn gcd_compiled_three_ways() {
    let src = "Function[{Typed[a, \"MachineInteger\"], Typed[b, \"MachineInteger\"]}, GCD[a, b]]";
    let cf = Compiler::default().function_compile_src(src).unwrap();
    let mut interp = Interpreter::new();
    let bc = wolfram_language_compiler::bytecode::BytecodeCompiler::new()
        .compile(
            &[
                wolfram_language_compiler::bytecode::ArgSpec::int("a"),
                wolfram_language_compiler::bytecode::ArgSpec::int("b"),
            ],
            // The legacy compiler has no GCD instruction: Euclid inline.
            &wolfram_language_compiler::expr::parse(
                "Module[{x = a, y = b, t = 0}, While[y != 0, t = Mod[x, y]; x = y; y = t]; Abs[x]]",
            )
            .unwrap(),
        )
        .unwrap();
    for (a, b) in [(12, 18), (0, 5), (7, 0), (-12, 18), (1071, 462), (17, 13)] {
        let want = interp.eval_src(&format!("GCD[{a}, {b}]")).unwrap();
        let got = cf.call(&[Value::I64(a), Value::I64(b)]).unwrap();
        assert_eq!(got.to_expr(), want, "compiled GCD[{a},{b}]");
        let got_bc = bc.run(&[Value::I64(a), Value::I64(b)]).unwrap();
        assert_eq!(got_bc.to_expr(), want, "bytecode GCD[{a},{b}]");
    }
}

#[test]
fn primeq_across_engines() {
    let mut interp = Interpreter::new();
    for n in [
        0i64, 1, 2, 3, 4, 97, 561, /* Carmichael */
        7919, 104729,
    ] {
        let want = wolfram_bench::native::is_prime(n as u64);
        let got = interp.eval_src(&format!("PrimeQ[{n}]")).unwrap();
        assert_eq!(got.is_true(), want, "PrimeQ[{n}]");
    }
}

#[test]
fn powermod_compiled_matches_interpreter_builtin_path() {
    let cf = Compiler::default()
        .function_compile_src(
            "Function[{Typed[a, \"MachineInteger\"], Typed[b, \"MachineInteger\"], \
             Typed[m, \"MachineInteger\"]}, PowerMod[a, b, m]]",
        )
        .unwrap();
    // Ground truth through the interpreter's bignum Power + Mod.
    let mut interp = Interpreter::new();
    for (a, b, m) in [
        (2i64, 100, 1_000_000_007),
        (5, 13, 97),
        (123456, 789, 65537),
    ] {
        let got = cf
            .call(&[Value::I64(a), Value::I64(b), Value::I64(m)])
            .unwrap()
            .expect_i64()
            .unwrap();
        let want = interp
            .eval_src(&format!("Mod[{a}^{b}, {m}]"))
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(got, want, "PowerMod[{a},{b},{m}]");
    }
}
