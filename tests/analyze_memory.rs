//! Memory-management edge placement, proved by the analyzer.
//!
//! The `memory-management` pass brackets every managed live interval with
//! `MemoryAcquire`/`MemoryRelease` at its death frontier: after the last
//! in-block use, before a terminator that reads the value, or on CFG
//! edges where the value goes dead (promoted to the successor head or
//! given a split block). Each placement shape is constructed here and the
//! `wolfram-analyze` refcount checker proves the result balanced on every
//! path; the committed difftest corpus is replayed through the full
//! pipeline at `VerifyLevel::Full` the same way.

use std::sync::Arc;

use wolfram_ir::{
    run_pass, verify_function, Block, BlockId, Callee, Constant, Function, Instr, VarId,
};
use wolfram_types::Type;

fn builtin(name: &str) -> Callee {
    Callee::Builtin(Arc::from(name))
}

fn acquires(f: &Function) -> usize {
    f.instrs()
        .filter(|i| matches!(i, Instr::MemoryAcquire { .. }))
        .count()
}

fn releases(f: &Function) -> usize {
    f.instrs()
        .filter(|i| matches!(i, Instr::MemoryRelease { .. }))
        .count()
}

/// Runs the pass and asserts the result is SSA-clean and refcount-balanced.
fn managed_and_balanced(f: &mut Function) {
    assert!(run_pass("memory-management", f).unwrap(), "pass ran");
    verify_function(f).unwrap_or_else(|e| panic!("SSA broken: {e}"));
    let diags = wolfram_analyze::refcount::check(f);
    assert!(diags.is_empty(), "refcount imbalance: {diags:?}");
    assert!(acquires(f) > 0, "nothing was managed");
    assert!(releases(f) >= acquires(f), "fewer releases than acquires");
}

#[test]
fn last_use_as_terminator_operand_releases_before_the_return() {
    // %0 : String is returned — its last use *is* the terminator, so the
    // release must sit immediately before it (the pass's convention the
    // checker exempts).
    let mut f = Function::new("f", 1);
    f.next_var = 1;
    f.blocks.push(Block {
        label: "start".into(),
        instrs: vec![
            Instr::LoadArgument {
                dst: VarId(0),
                index: 0,
            },
            Instr::Return {
                value: VarId(0).into(),
            },
        ],
    });
    f.var_types.insert(VarId(0), Type::string());
    managed_and_balanced(&mut f);
    let instrs = &f.block(BlockId(0)).instrs;
    let n = instrs.len();
    assert!(
        matches!(instrs[n - 2], Instr::MemoryRelease { var: VarId(0) }),
        "release not placed before the terminator: {}",
        f.to_text()
    );
    assert!(matches!(instrs[n - 1], Instr::Return { .. }));
}

#[test]
fn last_use_as_phi_operand_in_successor_is_released_on_the_edge() {
    // %0 : String flows into the join's phi only from the else-edge; on
    // the then-edge it is dead (the phi takes %2 there). The pass must
    // release %0 on the edge where it dies and still cover the edge where
    // the phi reads it.
    let mut f = Function::new("f", 0);
    f.next_var = 4;
    f.blocks.push(Block {
        label: "start".into(),
        instrs: vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("a".into()),
            },
            Instr::LoadConst {
                dst: VarId(1),
                value: Constant::Bool(true),
            },
            Instr::Branch {
                cond: VarId(1).into(),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        ],
    });
    f.blocks.push(Block {
        label: "then".into(),
        instrs: vec![
            Instr::LoadConst {
                dst: VarId(2),
                value: Constant::Str("b".into()),
            },
            Instr::Jump { target: BlockId(3) },
        ],
    });
    f.blocks.push(Block {
        label: "else".into(),
        instrs: vec![Instr::Jump { target: BlockId(3) }],
    });
    f.blocks.push(Block {
        label: "join".into(),
        instrs: vec![
            Instr::Phi {
                dst: VarId(3),
                incoming: vec![(BlockId(1), VarId(2).into()), (BlockId(2), VarId(0).into())],
            },
            Instr::Return {
                value: Constant::Null.into(),
            },
        ],
    });
    f.var_types.insert(VarId(0), Type::string());
    f.var_types.insert(VarId(1), Type::boolean());
    f.var_types.insert(VarId(2), Type::string());
    f.var_types.insert(VarId(3), Type::string());
    managed_and_balanced(&mut f);
}

#[test]
fn live_across_a_loop_back_edge_is_released_once_on_exit() {
    // %0 : String is read on every loop iteration, so it is live across
    // the back edge; the single release must land on the loop's exit
    // path, not inside the body (which would double-release on iteration
    // two).
    let mut f = Function::new("f", 0);
    f.next_var = 3;
    f.blocks.push(Block {
        label: "start".into(),
        instrs: vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("s".into()),
            },
            Instr::Jump { target: BlockId(1) },
        ],
    });
    f.blocks.push(Block {
        label: "loop".into(),
        instrs: vec![
            Instr::Call {
                dst: VarId(1),
                callee: builtin("StringLength"),
                args: vec![VarId(0).into()],
            },
            Instr::Call {
                dst: VarId(2),
                callee: builtin("EvenQ"),
                args: vec![VarId(1).into()],
            },
            Instr::Branch {
                cond: VarId(2).into(),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        ],
    });
    f.blocks.push(Block {
        label: "exit".into(),
        instrs: vec![Instr::Return {
            value: Constant::Null.into(),
        }],
    });
    f.var_types.insert(VarId(0), Type::string());
    f.var_types.insert(VarId(1), Type::integer64());
    f.var_types.insert(VarId(2), Type::boolean());
    managed_and_balanced(&mut f);
    // No release inside the loop body.
    assert!(
        !f.block(BlockId(1))
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::MemoryRelease { var: VarId(0) })),
        "released inside the loop: {}",
        f.to_text()
    );
}

#[test]
fn death_on_one_diamond_edge_gets_a_split_block() {
    // %0 : String is used only on the then-arm; on the direct edge
    // start -> join it is dead, but join has another predecessor that
    // still carries the value, so the release needs an edge split.
    let mut f = Function::new("f", 0);
    f.next_var = 3;
    f.blocks.push(Block {
        label: "start".into(),
        instrs: vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::LoadConst {
                dst: VarId(1),
                value: Constant::Bool(true),
            },
            Instr::Branch {
                cond: VarId(1).into(),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        ],
    });
    f.blocks.push(Block {
        label: "then".into(),
        instrs: vec![
            Instr::Call {
                dst: VarId(2),
                callee: builtin("StringLength"),
                args: vec![VarId(0).into()],
            },
            Instr::Jump { target: BlockId(2) },
        ],
    });
    f.blocks.push(Block {
        label: "join".into(),
        instrs: vec![Instr::Return {
            value: Constant::Null.into(),
        }],
    });
    f.var_types.insert(VarId(0), Type::string());
    f.var_types.insert(VarId(1), Type::boolean());
    f.var_types.insert(VarId(2), Type::integer64());
    managed_and_balanced(&mut f);
    assert!(
        f.blocks.iter().any(|b| b.label.starts_with("release.")),
        "expected an edge-split release block: {}",
        f.to_text()
    );
}

#[test]
fn corpus_compiles_analyzer_clean() {
    // Every committed difftest counterexample compiles through the full
    // pipeline at `VerifyLevel::Full` (the per-pass analyzer runs inside
    // `compile_to_twir`) and the final TWIR carries no error findings.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("difftest/corpus");
    let entries = wolfram_difftest::corpus::load_dir(&dir).expect("corpus parses");
    assert!(!entries.is_empty());
    let compiler = wolfram_compiler_core::Compiler::default();
    for (path, entry) in entries {
        let pm = compiler
            .compile_to_twir(&entry.func, None)
            .unwrap_or_else(|e| panic!("{} fails the analyzer: {e}", path.display()));
        let errors: Vec<_> = wolfram_analyze::analyze_module(&pm)
            .into_iter()
            .filter(|d| d.severity == wolfram_analyze::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", path.display());
    }
}

#[test]
fn benchmark_programs_are_analyzer_clean() {
    let compiler = wolfram_compiler_core::Compiler::default();
    for (name, src) in [
        ("FNV1a", wolfram_bench::programs::FNV1A_SRC),
        ("Mandelbrot", wolfram_bench::programs::MANDELBROT_SRC),
        ("QSort", wolfram_bench::programs::QSORT_SRC),
    ] {
        let f = wolfram_expr::parse(src).unwrap();
        let pm = compiler
            .compile_to_twir(&f, None)
            .unwrap_or_else(|e| panic!("{name} fails the analyzer: {e}"));
        let errors: Vec<_> = wolfram_analyze::analyze_module(&pm)
            .into_iter()
            .filter(|d| d.severity == wolfram_analyze::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{name}: {errors:?}");
    }
}
