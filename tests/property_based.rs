//! Property-based tests (proptest) over the core data structures and the
//! headline invariant: *compiled code agrees with the interpreter*.

use proptest::prelude::*;
use wolfram_language_compiler::compiler::Compiler;
use wolfram_language_compiler::expr::{parse, BigInt, Expr};
use wolfram_language_compiler::interp::Interpreter;
use wolfram_language_compiler::runtime::{Tensor, Value};

// ---------------------------------------------------------------------
// Expression parse/print round-trips.
// ---------------------------------------------------------------------

/// A generator of well-formed expressions.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Expr::int),
        (-1.0e15..1.0e15f64).prop_map(Expr::real),
        "[a-z][a-zA-Z0-9]{0,6}".prop_map(|s| Expr::sym(&s)),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(Expr::string),
    ];
    leaf.prop_recursive(4, 64, 5, |inner| {
        ("[A-Z][a-zA-Z0-9]{0,6}", prop::collection::vec(inner, 0..5))
            .prop_map(|(head, args)| Expr::call(&head, args))
    })
}

proptest! {
    #[test]
    fn full_form_round_trips(e in arb_expr()) {
        let printed = e.to_full_form();
        let reparsed = parse(&printed).expect("FullForm must reparse");
        prop_assert_eq!(reparsed, e);
    }

    #[test]
    fn input_form_preserves_value_for_arithmetic(a in -10_000i64..10_000, b in -10_000i64..10_000, c in 1i64..100) {
        // InputForm of arithmetic expressions evaluates identically.
        let e = parse(&format!("({a} + {b}) * {c} - {a}")).unwrap();
        let printed = e.to_input_form();
        let reparsed = parse(&printed).expect("InputForm must reparse");
        let mut i1 = Interpreter::new();
        let mut i2 = Interpreter::new();
        prop_assert_eq!(i1.eval(&e).unwrap(), i2.eval(&reparsed).unwrap());
    }
}

// ---------------------------------------------------------------------
// BigInt arithmetic against i128 ground truth.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = &BigInt::from(a) + &BigInt::from(b);
        prop_assert_eq!(sum.to_string(), (a as i128 + b as i128).to_string());
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = &BigInt::from(a) * &BigInt::from(b);
        prop_assert_eq!(prod.to_string(), (a as i128 * b as i128).to_string());
    }

    #[test]
    fn bigint_sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let diff = &BigInt::from(a) - &BigInt::from(b);
        prop_assert_eq!(diff.to_string(), (a as i128 - b as i128).to_string());
    }

    #[test]
    fn bigint_parse_display_roundtrip(digits in "-?[1-9][0-9]{0,38}") {
        let v = BigInt::parse(&digits).expect("parseable");
        prop_assert_eq!(v.to_string(), digits);
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), (a as i128).cmp(&(b as i128)));
    }
}

// ---------------------------------------------------------------------
// Tensor copy-on-write invariants (F5).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tensor_cow_never_disturbs_aliases(
        data in prop::collection::vec(any::<i64>(), 1..32),
        writes in prop::collection::vec((0usize..32, any::<i64>()), 0..16),
    ) {
        let original = Tensor::from_i64(data.clone());
        let alias = original.clone();
        let mut working = original.clone();
        let mut expected = data.clone();
        for (ix, v) in writes {
            let ix = ix % data.len();
            working.set_i64(ix, v).unwrap();
            expected[ix] = v;
        }
        prop_assert_eq!(alias.as_i64().unwrap(), data.as_slice());
        prop_assert_eq!(working.as_i64().unwrap(), expected.as_slice());
    }
}

// ---------------------------------------------------------------------
// The headline property: FunctionCompile agrees with the interpreter on
// randomly generated integer arithmetic programs.
// ---------------------------------------------------------------------

/// Generates arithmetic source over variables `x` and `y` that is total
/// (no division) and overflow-free for small inputs.
fn arb_int_arith() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("Min[{a}, {b}]")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("Max[{a}, {b}]")),
            inner.clone().prop_map(|a| format!("Abs[{a}]")),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, f)| { format!("If[{c} < {t}, {t}, {f}]") }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn compiled_matches_interpreter_on_arithmetic(
        body in arb_int_arith(),
        x in -50i64..50,
        y in -50i64..50,
    ) {
        let src = format!(
            "Function[{{Typed[x, \"MachineInteger\"], Typed[y, \"MachineInteger\"]}}, {body}]"
        );
        let compiler = Compiler::default();
        let cf = compiler.function_compile_src(&src).expect("compiles");
        let compiled = cf.call(&[Value::I64(x), Value::I64(y)]).expect("runs");

        let mut interp = Interpreter::new();
        let f = parse(&src).unwrap();
        let call = Expr::normal(f, vec![Expr::int(x), Expr::int(y)]);
        let interpreted = interp.eval(&call).expect("interprets");
        prop_assert_eq!(compiled.to_expr(), interpreted, "program: {}", body);
    }

    #[test]
    fn compiled_loops_match_interpreter(
        n in 0i64..40,
        step in 1i64..5,
        bias in -3i64..4,
    ) {
        let src = format!(
            "Function[{{Typed[n, \"MachineInteger\"]}}, \
             Module[{{s = 0, i = 0}}, While[i < n, s = s + i*{step} + {bias}; i = i + 1]; s]]"
        );
        let compiler = Compiler::default();
        let cf = compiler.function_compile_src(&src).expect("compiles");
        let compiled = cf.call(&[Value::I64(n)]).expect("runs");
        let mut interp = Interpreter::new();
        let f = parse(&src).unwrap();
        let call = Expr::normal(f, vec![Expr::int(n)]);
        let interpreted = interp.eval(&call).expect("interprets");
        prop_assert_eq!(compiled.to_expr(), interpreted);
    }

    #[test]
    fn compiled_matches_bytecode_on_arithmetic(
        body in arb_int_arith(),
        x in -50i64..50,
        y in -50i64..50,
    ) {
        // All three execution engines agree.
        let src = format!(
            "Function[{{Typed[x, \"MachineInteger\"], Typed[y, \"MachineInteger\"]}}, {body}]"
        );
        let cf = Compiler::default().function_compile_src(&src).expect("compiles");
        let compiled = cf.call(&[Value::I64(x), Value::I64(y)]).expect("runs");
        let bc = wolfram_language_compiler::bytecode::BytecodeCompiler::new()
            .compile(
                &[
                    wolfram_language_compiler::bytecode::ArgSpec::int("x"),
                    wolfram_language_compiler::bytecode::ArgSpec::int("y"),
                ],
                &parse(&body).unwrap(),
            )
            .expect("bytecode compiles");
        let vm = bc.run(&[Value::I64(x), Value::I64(y)]).expect("vm runs");
        prop_assert_eq!(compiled, vm, "program: {}", body);
    }
}

// ---------------------------------------------------------------------
// Type-system properties.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn unification_is_symmetric_on_atomics(
        a in prop::sample::select(vec!["Integer64", "Real64", "Boolean", "String"]),
        b in prop::sample::select(vec!["Integer64", "Real64", "Boolean", "String"]),
    ) {
        use wolfram_language_compiler::types::{unify, Subst, Type};
        let (ta, tb) = (Type::atomic(a), Type::atomic(b));
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        prop_assert_eq!(
            unify(&ta, &tb, &mut s1).is_ok(),
            unify(&tb, &ta, &mut s2).is_ok()
        );
    }

    #[test]
    fn promotion_is_antisymmetric(
        a in prop::sample::select(vec!["Integer8", "Integer32", "Integer64", "Real64", "ComplexReal64"]),
        b in prop::sample::select(vec!["Integer8", "Integer32", "Integer64", "Real64", "ComplexReal64"]),
    ) {
        use wolfram_language_compiler::types::{subst::promotion_cost, Type};
        let (ta, tb) = (Type::atomic(a), Type::atomic(b));
        let up = promotion_cost(&ta, &tb);
        let down = promotion_cost(&tb, &ta);
        if a == b {
            prop_assert_eq!(up, Some(0));
        } else {
            // At most one direction exists.
            prop_assert!(up.is_none() || down.is_none());
        }
    }
}

// ---------------------------------------------------------------------
// Compiled higher-order functions and broadcasts vs the interpreter.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compiled `Fold[Function[{a, k}, ...], 0, Range[n]]` (lambda typed
    /// purely through Fold's signature) agrees with the interpreter.
    #[test]
    fn compiled_fold_over_range_matches_interpreter(n in 0i64..60, c in -5i64..6) {
        let src = format!(
            "Function[{{Typed[n, \"MachineInteger\"]}}, \
             Fold[Function[{{acc, k}}, acc + ({c})*k], 0, Range[n]]]"
        );
        let cf = Compiler::default().function_compile_src(&src).unwrap();
        let got = cf.call(&[Value::I64(n)]).unwrap().expect_i64().unwrap();
        let want = Interpreter::new()
            .eval_src(&format!(
                "Fold[Function[{{acc, k}}, acc + ({c})*k], 0, Range[{n}]]"
            ))
            .unwrap()
            .as_i64()
            .unwrap();
        prop_assert_eq!(got, want);
    }

    /// Compiled `Total`/`Map` over a real vector agree with the
    /// interpreter (element order and promotion included).
    #[test]
    fn compiled_total_map_matches_interpreter(
        xs in prop::collection::vec(-100.0f64..100.0, 1..24),
        m in -4i64..5,
    ) {
        let cf = Compiler::default()
            .function_compile_src(&format!(
                "Function[{{Typed[v, \"Tensor\"[\"Real64\", 1]]}}, \
                 Total[Map[Function[{{x}}, x*({m}) + 1.0], v]]]"
            ))
            .unwrap();
        let got = cf
            .call(&[Value::Tensor(Tensor::from_f64(xs.clone()))])
            .unwrap()
            .expect_f64()
            .unwrap();
        let want: f64 = xs.iter().map(|x| x * m as f64 + 1.0).sum();
        prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()), "{got} vs {want}");
    }

    /// Tensor (+) scalar broadcast is element-wise and matches both
    /// operand orders.
    #[test]
    fn compiled_broadcast_matches_elementwise(
        xs in prop::collection::vec(-1_000.0f64..1_000.0, 1..16),
        k in -50i64..50,
    ) {
        let tv = || Value::Tensor(Tensor::from_f64(xs.clone()));
        for (src, f) in [
            (
                format!("Function[{{Typed[v, \"Tensor\"[\"Real64\", 1]]}}, v + ({k})]"),
                Box::new(|x: f64| x + k as f64) as Box<dyn Fn(f64) -> f64>,
            ),
            (
                format!("Function[{{Typed[v, \"Tensor\"[\"Real64\", 1]]}}, ({k}) - v]"),
                Box::new(|x: f64| k as f64 - x),
            ),
            (
                format!("Function[{{Typed[v, \"Tensor\"[\"Real64\", 1]]}}, v*({k})]"),
                Box::new(|x: f64| x * k as f64),
            ),
        ] {
            let cf = Compiler::default().function_compile_src(&src).unwrap();
            let out = cf.call(&[tv()]).unwrap();
            let out = out.expect_tensor().unwrap();
            let got = out.as_f64().unwrap();
            for (g, x) in got.iter().zip(&xs) {
                prop_assert!((g - f(*x)).abs() < 1e-12, "{src}: {g} vs {}", f(*x));
            }
        }
    }

    /// Integer broadcasts overflow-check like scalar arithmetic: no
    /// silent wrapping.
    #[test]
    fn integer_broadcast_checks_overflow(k in 2i64..1_000) {
        let cf = Compiler::default()
            .function_compile_src(
                "Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]], \
                  Typed[k, \"MachineInteger\"]}, v*k]",
            )
            .unwrap();
        let near_max = Tensor::from_i64(vec![1, i64::MAX / 2 + 1]);
        let res = cf.call(&[Value::Tensor(near_max), Value::I64(k)]);
        prop_assert!(res.is_err(), "expected IntegerOverflow, got {res:?}");
        // In-range stays exact.
        let small = Tensor::from_i64(vec![-3, 0, 7]);
        let out = cf.call(&[Value::Tensor(small), Value::I64(k)]).unwrap();
        let out = out.expect_tensor().unwrap();
        prop_assert_eq!(out.as_i64().unwrap(), &[-3 * k, 0, 7 * k][..]);
    }
}
