//! Replays the committed counterexample corpus. Every artifact under
//! `difftest/corpus/` is a divergence the fuzzer once found (or a
//! hand-pinned semantic corner); replaying them on each `cargo test` run
//! keeps once-fixed engine disagreements fixed.

use std::path::Path;

use wolfram_difftest::oracle;

#[test]
fn corpus_replays_without_divergence() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("difftest/corpus");
    let entries = wolfram_difftest::corpus::load_dir(&dir).expect("corpus parses");
    assert!(
        !entries.is_empty(),
        "committed corpus is missing from {}",
        dir.display()
    );
    for (path, entry) in entries {
        let subject = oracle::prepare(&entry.func)
            .unwrap_or_else(|e| panic!("{} no longer compiles: {e}", path.display()));
        for args in &entry.arg_sets {
            let run = subject.run(args);
            assert!(
                run.divergence().is_none(),
                "{} regressed ({}): {:?}",
                path.display(),
                entry.note,
                run.outcomes
            );
        }
    }
}
