//! Integration: the §2.1 language semantics the compiler must preserve,
//! exercised through the facade crate.

use wolfram_language_compiler::interp::Interpreter;
use wolfram_language_compiler::runtime::RuntimeError;

fn ev(src: &str) -> String {
    Interpreter::new().eval_src(src).unwrap().to_full_form()
}

#[test]
fn paper_fib_definition() {
    // "fib = Function[{n}, If[n < 1, 1, fib[n-1]+fib[n-2]]]" with
    // fib[10] (the §2.1 walkthrough).
    assert_eq!(
        ev("fib = Function[{n}, If[n < 1, 1, fib[n-1] + fib[n-2]]]; fib[10]"),
        "144"
    );
}

#[test]
fn infinite_evaluation_examples() {
    // "y=x;x=1;y ... the result is 1".
    assert_eq!(ev("y = x; x = 1; y"), "1");
    // "x=x+1 results in an infinite loop if x is undefined".
    let mut i = Interpreter::new();
    i.recursion_limit = 64;
    assert!(matches!(
        i.eval_src("x = x + 1; x"),
        Err(RuntimeError::RecursionLimit(_))
    ));
}

#[test]
fn symbolic_expressions_without_definitions() {
    // "A program such as Sin[x] is a valid symbolic expression; even if x
    // is never defined."
    assert_eq!(ev("Sin[x]"), "Sin[x]");
    assert_eq!(ev("Sin[x] + Sin[x]"), "Times[2, Sin[x]]");
}

#[test]
fn nestlist_shape() {
    // "NestList[f,x,3] evaluates to {x,f[x],f[f[x]],f[f[f[x]]]}".
    assert_eq!(
        ev("NestList[f, x, 3]"),
        "List[x, f[x], f[f[x]], f[f[f[x]]]]"
    );
}

#[test]
fn mutability_semantics_trio() {
    // The three §3 F5 examples, verbatim.
    assert_eq!(
        ev("({#, StringReplace[#, \"foo\" -> \"grok\"]} &)[\"foobar\"]"),
        "List[\"foobar\", \"grokbar\"]"
    );
    assert_eq!(ev("a = {1, 2, 3}; a[[3]] = -20; a"), "List[1, 2, -20]");
    assert_eq!(ev("a = {1, 2, 3}; b = a; a[[3]] = -20; b"), "List[1, 2, 3]");
}

#[test]
fn block_is_dynamically_scoped() {
    // Block exposes its bindings to functions called within it; Module
    // does not.
    assert_eq!(ev("f[] := q; Block[{q = 5}, f[]]"), "5");
    assert_eq!(ev("g[] := r; Module[{r = 5}, g[]]"), "r");
    // Block restores the previous value afterwards.
    assert_eq!(ev("q = 1; Block[{q = 9}, Null]; q"), "1");
}

#[test]
fn with_substitutes_before_evaluation() {
    assert_eq!(ev("With[{k = 2}, Hold[k + 1]]"), "Hold[Plus[2, 1]]");
}

#[test]
fn hold_prevents_evaluation() {
    assert_eq!(ev("Hold[1 + 1]"), "Hold[Plus[1, 1]]");
    assert_eq!(ev("If[True, 1, Print[\"never\"]]"), "1");
    let mut i = Interpreter::new();
    i.eval_src("If[False, Print[\"never\"], ok]").unwrap();
    assert!(i.take_output().is_empty(), "held branch must not run");
}

#[test]
fn downvalues_specificity_and_conditions() {
    assert_eq!(
        ev("h[0] = zero; h[n_ /; n < 0] := neg; h[n_] := pos; {h[0], h[-3], h[5]}"),
        "List[zero, neg, pos]"
    );
}

#[test]
fn throw_catch() {
    assert_eq!(ev("Catch[1 + Throw[42]]"), "42");
    assert_eq!(ev("Catch[Do[If[k == 3, Throw[k]], {k, 10}]]"), "3");
}

#[test]
fn listable_threading_deep() {
    assert_eq!(
        ev("{{1, 2}, {3, 4}} + 10"),
        "List[List[11, 12], List[13, 14]]"
    );
    assert_eq!(ev("Sqrt[{16.0, 25.0}]"), "List[4., 5.]");
}

#[test]
fn functional_composition() {
    assert_eq!(ev("Fold[Plus, 0, Map[(#^2 &), Range[4]]]"), "30");
    assert_eq!(
        ev("Select[Range[20], PrimeQ]"),
        "List[2, 3, 5, 7, 11, 13, 17, 19]"
    );
    assert_eq!(ev("FixedPoint[Function[v, Quotient[v, 2]], 100]"), "0");
}

#[test]
fn intro_total_randomvariate() {
    // The §1 flagship one-liner.
    let mut i = Interpreter::new();
    i.seed_random(1);
    let out = i
        .eval_src("Total[RandomVariate[NormalDistribution[], {10, 10}]]")
        .unwrap();
    assert!(out.has_head("List"));
    assert_eq!(out.length(), 10);
}

#[test]
fn findroot_paper_example() {
    // FindRoot[Sin[x] + E^x, {x, 0}] -> x ~ -0.588533 (§2.1).
    let mut i = Interpreter::new();
    let out = i.eval_src("FindRoot[Sin[x] + E^x, {x, 0}]").unwrap();
    let root = out.args()[0].args()[1].as_f64().unwrap();
    assert!((root + 0.588533).abs() < 1e-5);
}

#[test]
fn interpreter_abort_is_recoverable() {
    let mut i = Interpreter::new();
    i.eval_src("acc = 0").unwrap();
    i.abort_signal().trigger();
    assert_eq!(
        i.eval_src("While[True, acc = acc + 1]"),
        Err(RuntimeError::Aborted)
    );
    i.abort_signal().reset();
    // Session continues; acc holds partial state.
    assert!(i.eval_src("acc").unwrap().as_i64().is_some());
}

#[test]
fn replace_repeated_and_rules() {
    assert_eq!(ev("f[f[f[x]]] //. f[a_] -> a"), "x");
    assert_eq!(ev("{1, 2, 3} /. n_Integer :> n*10"), "List[10, 20, 30]");
}

#[test]
fn derivative_table() {
    for (src, want) in [
        ("D[x^3, x]", "Times[3, Power[x, 2]]"),
        (
            "D[Sin[x]*Cos[x], x]",
            "Plus[Times[-1, Power[Sin[x], 2]], Power[Cos[x], 2]]",
        ),
        ("D[E^(2*x), x]", "Times[2, Power[E, Times[2, x]]]"),
    ] {
        let got = ev(src);
        // Structural comparison up to ordering: evaluate the difference at
        // sample points instead.
        let mut i = Interpreter::new();
        for x in [0.3f64, 1.1, -0.7] {
            let d = i
                .eval_src(&format!("N[({got}) - ({want}) /. x -> {x}]"))
                .unwrap()
                .as_f64()
                .unwrap_or(f64::NAN);
            assert!(d.abs() < 1e-9, "{src}: {got} vs {want} at x={x} -> {d}");
        }
    }
}
