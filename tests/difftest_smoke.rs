//! Bounded differential-fuzzing smoke run — tier 1 of the wolfram-difftest
//! pyramid (`reproduce -- difftest` and the scheduled CI sweep are tiers 2
//! and 3). Deterministic: the same seed generates the same programs, so a
//! failure here is immediately replayable.

use wolfram_difftest::{run_fuzz, FuzzConfig};

#[test]
fn three_hundred_programs_agree_across_engines() {
    let cfg = FuzzConfig {
        seed: 0xD1FF_7E57,
        iters: 300,
        shrink: true,
        analyze: true,
    };
    let report = run_fuzz(&cfg);
    assert!(
        report.divergences.is_empty(),
        "tri-engine divergences found:\n{}",
        report
            .divergences
            .iter()
            .map(|c| format!(
                "seed {}: {}\n  {}",
                c.seed,
                c.shrunk.note,
                c.shrunk.func.to_input_form()
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.prepare_failures, 0, "{:?}", report.prepare_samples);
    assert_eq!(report.roundtrip_failures, 0);
    // Every program compiled and ran on all five engines.
    assert_eq!(report.programs_run, 300);
    // ~1% of generated programs evaluate to an inert symbolic form on the
    // oracle (e.g. `Mod[x, 0.]`) and are counted inconclusive rather than
    // compared. A jump in that rate means the generator left the subset.
    assert!(
        report.out_of_subset <= 15,
        "out-of-subset rate jumped: {}",
        report.out_of_subset
    );
}
